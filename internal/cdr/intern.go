package cdr

import "sync"

// The protocol layers above CDR read the same small vocabulary of
// strings over and over on their hot paths: node names, group names,
// operation names, client identifiers. Decoding each occurrence
// allocates a fresh string; across a token rotation or a coalesced data
// batch those add up to a large share of the garbage the receive path
// produces. The intern table maps each distinct spelling to one shared
// string, so steady-state decoding allocates nothing for strings.
//
// The table is capped: an adversarial or merely unbounded vocabulary
// (say, per-request identifiers routed through an interned field) must
// not pin memory forever, so once full the table stops growing and
// lookups that miss simply allocate like before.
var internTab = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

// maxInterned bounds the table. Node, group, and operation vocabularies
// are far smaller in practice; the cap only matters if a caller routes
// high-cardinality data through an interned read by mistake.
const maxInterned = 4096

// Intern returns a canonical string equal to b. The fast path (the
// spelling is already in the table) performs no allocation: the map
// lookup with a byte-slice key conversion does not escape.
func Intern(b []byte) string {
	internTab.RLock()
	s, ok := internTab.m[string(b)]
	internTab.RUnlock()
	if ok {
		return s
	}
	internTab.Lock()
	defer internTab.Unlock()
	if s, ok = internTab.m[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(internTab.m) < maxInterned {
		internTab.m[s] = s
	}
	return s
}

// ReadStringInterned is ReadString through the intern table: use it for
// fields drawn from a small fixed vocabulary (protocol names, node and
// group identifiers), where it makes steady-state decoding allocation
// free. Do not use it for unbounded user data.
func (d *Decoder) ReadStringInterned() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 || n > MaxSeqLen {
		if n == 0 {
			return "", nil
		}
		return "", ErrSeqTooLong
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[len(b)-1] != 0 {
		return "", ErrBadString
	}
	return Intern(b[:len(b)-1]), nil
}
