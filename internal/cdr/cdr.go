// Package cdr implements a Common Data Representation (CDR) style codec,
// the on-the-wire encoding used by GIOP/IIOP in CORBA systems.
//
// CDR encodes primitive values at naturally aligned offsets relative to the
// start of the enclosing message (or encapsulation) and supports both
// big-endian and little-endian byte orders; the producer writes in its
// native order and flags the order in the message header, so the consumer
// byte-swaps only when the orders differ ("receiver makes it right").
//
// The package provides an Encoder that appends to an internal buffer and a
// Decoder that consumes a byte slice, plus encapsulation helpers
// (EncodeEncapsulation / DecodeEncapsulation) used for tagged profile and
// service-context bodies.
package cdr

import (
	"errors"
	"fmt"
	"math"
)

// Byte-order flags as carried in GIOP headers and encapsulations.
const (
	BigEndian    = 0x00
	LittleEndian = 0x01
)

// MaxSeqLen bounds decoded sequence/string lengths to guard against
// corrupt or hostile length prefixes allocating unbounded memory.
const MaxSeqLen = 1 << 26 // 64 Mi elements

// Errors returned by the Decoder.
var (
	ErrTruncated  = errors.New("cdr: truncated data")
	ErrBadString  = errors.New("cdr: string not NUL-terminated")
	ErrSeqTooLong = errors.New("cdr: sequence length exceeds limit")
	ErrBadBool    = errors.New("cdr: boolean not 0 or 1")
	ErrBadOrder   = errors.New("cdr: invalid byte-order flag")
)

// Encoder marshals values in CDR format. The zero value is ready to use and
// encodes big-endian; use NewEncoder to choose the byte order.
//
// Alignment is computed relative to the start of the buffer, so an Encoder
// used for a GIOP message body must be seeded with the 12-byte header (or
// the header must be accounted for with Align) before body fields are
// written. GIOP helpers in package giop handle this.
type Encoder struct {
	buf    []byte
	little bool
}

// NewEncoder returns an Encoder writing in the given byte order
// (BigEndian or LittleEndian).
func NewEncoder(order byte) *Encoder {
	return &Encoder{little: order == LittleEndian}
}

// Order reports the encoder's byte-order flag.
func (e *Encoder) Order() byte {
	if e.little {
		return LittleEndian
	}
	return BigEndian
}

// Bytes returns the encoded buffer. The returned slice aliases the
// encoder's internal buffer; callers that keep encoding must copy it first.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards encoded data, retaining the allocation and byte order.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Align pads the buffer with zero bytes so the next write begins at a
// multiple of n (n must be a power of two: 1, 2, 4, or 8).
func (e *Encoder) Align(n int) {
	rem := len(e.buf) & (n - 1)
	if rem == 0 {
		return
	}
	for i := rem; i < n; i++ {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a single octet (no alignment).
func (e *Encoder) WriteOctet(v byte) { e.buf = append(e.buf, v) }

// WriteBool appends a boolean as one octet (1 = true, 0 = false).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteUShort appends a uint16 at 2-byte alignment.
func (e *Encoder) WriteUShort(v uint16) {
	e.Align(2)
	if e.little {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	} else {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	}
}

// WriteShort appends an int16 at 2-byte alignment.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong appends a uint32 at 4-byte alignment.
func (e *Encoder) WriteULong(v uint32) {
	e.Align(4)
	if e.little {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	} else {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// WriteLong appends an int32 at 4-byte alignment.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong appends a uint64 at 8-byte alignment.
func (e *Encoder) WriteULongLong(v uint64) {
	e.Align(8)
	if e.little {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	} else {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// WriteLongLong appends an int64 at 8-byte alignment.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat appends a float32 at 4-byte alignment.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends a float64 at 8-byte alignment.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: ulong length including the terminating
// NUL, the bytes, then a NUL octet.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctetSeq appends a sequence<octet>: ulong length then raw bytes.
func (e *Encoder) WriteOctetSeq(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteRaw appends bytes verbatim with no length prefix or alignment.
// It is used for pre-encoded encapsulations and message bodies.
func (e *Encoder) WriteRaw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder unmarshals CDR data produced by an Encoder (or a foreign ORB).
// The zero value decodes an empty big-endian buffer; use NewDecoder.
type Decoder struct {
	buf      []byte
	pos      int
	little   bool
	zeroCopy bool
}

// NewDecoder returns a Decoder reading buf in the given byte order.
func NewDecoder(buf []byte, order byte) *Decoder {
	return &Decoder{buf: buf, little: order == LittleEndian}
}

// SetZeroCopy switches ReadOctetSeq and ReadRaw to return views into the
// decode buffer instead of copies. Views share the buffer's lifetime: a
// caller enabling this owns the discipline that nothing aliasing the buffer
// outlives it (the giop pooled read path pairs this with ReleaseFrame).
func (d *Decoder) SetZeroCopy(on bool) { d.zeroCopy = on }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset from the start of the buffer.
func (d *Decoder) Pos() int { return d.pos }

// Align advances the read position to a multiple of n (power of two).
func (d *Decoder) Align(n int) error {
	rem := d.pos & (n - 1)
	if rem == 0 {
		return nil
	}
	skip := n - rem
	if d.pos+skip > len(d.buf) {
		return ErrTruncated
	}
	d.pos += skip
	return nil
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return ErrTruncated
	}
	return nil
}

// ReadOctet consumes one octet.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// ReadBool consumes one octet and maps 0/1 to false/true.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadOctet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, ErrBadBool
	}
}

// ReadUShort consumes a uint16 at 2-byte alignment.
func (d *Decoder) ReadUShort() (uint16, error) {
	if err := d.Align(2); err != nil {
		return 0, err
	}
	if err := d.need(2); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 2
	if d.little {
		return uint16(b[0]) | uint16(b[1])<<8, nil
	}
	return uint16(b[1]) | uint16(b[0])<<8, nil
}

// ReadShort consumes an int16 at 2-byte alignment.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong consumes a uint32 at 4-byte alignment.
func (d *Decoder) ReadULong() (uint32, error) {
	if err := d.Align(4); err != nil {
		return 0, err
	}
	if err := d.need(4); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 4
	if d.little {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
	}
	return uint32(b[3]) | uint32(b[2])<<8 | uint32(b[1])<<16 | uint32(b[0])<<24, nil
}

// ReadLong consumes an int32 at 4-byte alignment.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong consumes a uint64 at 8-byte alignment.
func (d *Decoder) ReadULongLong() (uint64, error) {
	if err := d.Align(8); err != nil {
		return 0, err
	}
	if err := d.need(8); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 8
	if d.little {
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
	}
	return uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
		uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56, nil
}

// ReadLongLong consumes an int64 at 8-byte alignment.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat consumes a float32 at 4-byte alignment.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble consumes a float64 at 8-byte alignment.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString consumes a CDR string (length includes the NUL terminator).
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 || n > MaxSeqLen {
		if n == 0 {
			// A zero length is produced by some ORBs for empty strings
			// (omitting the NUL); tolerate it on input.
			return "", nil
		}
		return "", ErrSeqTooLong
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[len(b)-1] != 0 {
		return "", ErrBadString
	}
	return string(b[:len(b)-1]), nil
}

// ReadOctetSeq consumes a sequence<octet>. The returned slice is a copy,
// safe to retain after further decoding — unless SetZeroCopy is on, in
// which case it is a capped view into the decode buffer.
func (d *Decoder) ReadOctetSeq() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if n > MaxSeqLen {
		return nil, ErrSeqTooLong
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	if d.zeroCopy {
		out := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
		d.pos += int(n)
		return out, nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:])
	d.pos += int(n)
	return out, nil
}

// ReadRaw consumes exactly n bytes with no alignment, returning a copy
// (or a capped view when SetZeroCopy is on).
func (d *Decoder) ReadRaw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("cdr: negative raw length %d", n)
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	if d.zeroCopy {
		out := d.buf[d.pos : d.pos+n : d.pos+n]
		d.pos += n
		return out, nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:])
	d.pos += n
	return out, nil
}

// EncodeEncapsulation wraps body-building in a CDR encapsulation: a fresh
// alignment context whose first octet is the byte-order flag. The result is
// suitable for embedding as a sequence<octet> (tagged components, service
// contexts, profile bodies).
func EncodeEncapsulation(order byte, build func(*Encoder)) []byte {
	e := GetEncoder(order)
	e.WriteOctet(order)
	build(e)
	out := e.TakeBytes()
	e.Release()
	return out
}

// DecodeEncapsulation opens an encapsulation produced by
// EncodeEncapsulation (or a foreign ORB) and returns a Decoder positioned
// after the byte-order flag.
func DecodeEncapsulation(b []byte) (*Decoder, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	order := b[0]
	if order != BigEndian && order != LittleEndian {
		return nil, ErrBadOrder
	}
	d := NewDecoder(b, order)
	if _, err := d.ReadOctet(); err != nil {
		return nil, err
	}
	return d, nil
}
