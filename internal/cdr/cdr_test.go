package cdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderAlignment(t *testing.T) {
	tests := []struct {
		name  string
		build func(e *Encoder)
		want  []byte
	}{
		{
			name:  "ushort after octet pads one",
			build: func(e *Encoder) { e.WriteOctet(0xAA); e.WriteUShort(0x0102) },
			want:  []byte{0xAA, 0x00, 0x01, 0x02},
		},
		{
			name:  "ulong after octet pads three",
			build: func(e *Encoder) { e.WriteOctet(0xAA); e.WriteULong(0x01020304) },
			want:  []byte{0xAA, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04},
		},
		{
			name: "ulonglong after ulong pads four",
			build: func(e *Encoder) {
				e.WriteULong(1)
				e.WriteULongLong(2)
			},
			want: []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2},
		},
		{
			name:  "aligned write adds no padding",
			build: func(e *Encoder) { e.WriteULong(7); e.WriteULong(8) },
			want:  []byte{0, 0, 0, 7, 0, 0, 0, 8},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(BigEndian)
			tt.build(e)
			if !bytes.Equal(e.Bytes(), tt.want) {
				t.Errorf("got % x, want % x", e.Bytes(), tt.want)
			}
		})
	}
}

func TestLittleEndianEncoding(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.WriteULong(0x01020304)
	want := []byte{0x04, 0x03, 0x02, 0x01}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x, want % x", e.Bytes(), want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello, world", "héllo ✓", string(make([]byte, 1000))} {
		for _, order := range []byte{BigEndian, LittleEndian} {
			e := NewEncoder(order)
			e.WriteString(s)
			d := NewDecoder(e.Bytes(), order)
			got, err := d.ReadString()
			if err != nil {
				t.Fatalf("order %d ReadString(%q): %v", order, s, err)
			}
			if got != s {
				t.Errorf("order %d: got %q, want %q", order, got, s)
			}
			if d.Remaining() != 0 {
				t.Errorf("order %d: %d bytes left over", order, d.Remaining())
			}
		}
	}
}

func TestStringMissingNUL(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(3)
	e.WriteRaw([]byte{'a', 'b', 'c'}) // no NUL
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); err != ErrBadString {
		t.Fatalf("got err %v, want ErrBadString", err)
	}
}

func TestTruncatedReads(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
		read func(d *Decoder) error
	}{
		{"octet", nil, func(d *Decoder) error { _, err := d.ReadOctet(); return err }},
		{"ushort", []byte{1}, func(d *Decoder) error { _, err := d.ReadUShort(); return err }},
		{"ulong", []byte{1, 2, 3}, func(d *Decoder) error { _, err := d.ReadULong(); return err }},
		{"ulonglong", []byte{1, 2, 3, 4, 5}, func(d *Decoder) error { _, err := d.ReadULongLong(); return err }},
		{"string length", []byte{0, 0}, func(d *Decoder) error { _, err := d.ReadString(); return err }},
		{"string body", []byte{0, 0, 0, 9, 'x'}, func(d *Decoder) error { _, err := d.ReadString(); return err }},
		{"octetseq body", []byte{0, 0, 0, 5, 1, 2}, func(d *Decoder) error { _, err := d.ReadOctetSeq(); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDecoder(tt.buf, BigEndian)
			if err := tt.read(d); err != ErrTruncated {
				t.Errorf("got err %v, want ErrTruncated", err)
			}
		})
	}
}

func TestBoolValidation(t *testing.T) {
	d := NewDecoder([]byte{2}, BigEndian)
	if _, err := d.ReadBool(); err != ErrBadBool {
		t.Fatalf("got err %v, want ErrBadBool", err)
	}
}

func TestSeqTooLong(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(MaxSeqLen + 1)
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctetSeq(); err != ErrSeqTooLong {
		t.Fatalf("got err %v, want ErrSeqTooLong", err)
	}
}

// TestPrimitiveRoundTripQuick property-tests that every primitive survives
// an encode/decode cycle in both byte orders, preceded by a random amount
// of misalignment.
func TestPrimitiveRoundTripQuick(t *testing.T) {
	type sample struct {
		Pad  uint8 // 0-255 leading octets to perturb alignment
		B    bool
		O    byte
		S    int16
		US   uint16
		L    int32
		UL   uint32
		LL   int64
		ULL  uint64
		F    float32
		D    float64
		Str  string
		Blob []byte
	}
	for _, order := range []byte{BigEndian, LittleEndian} {
		order := order
		f := func(s sample) bool {
			e := NewEncoder(order)
			for i := 0; i < int(s.Pad%8); i++ {
				e.WriteOctet(0xFF)
			}
			e.WriteBool(s.B)
			e.WriteOctet(s.O)
			e.WriteShort(s.S)
			e.WriteUShort(s.US)
			e.WriteLong(s.L)
			e.WriteULong(s.UL)
			e.WriteLongLong(s.LL)
			e.WriteULongLong(s.ULL)
			e.WriteFloat(s.F)
			e.WriteDouble(s.D)
			e.WriteString(s.Str)
			e.WriteOctetSeq(s.Blob)

			d := NewDecoder(e.Bytes(), order)
			for i := 0; i < int(s.Pad%8); i++ {
				if _, err := d.ReadOctet(); err != nil {
					return false
				}
			}
			b, err := d.ReadBool()
			if err != nil || b != s.B {
				return false
			}
			o, err := d.ReadOctet()
			if err != nil || o != s.O {
				return false
			}
			sh, err := d.ReadShort()
			if err != nil || sh != s.S {
				return false
			}
			ush, err := d.ReadUShort()
			if err != nil || ush != s.US {
				return false
			}
			l, err := d.ReadLong()
			if err != nil || l != s.L {
				return false
			}
			ul, err := d.ReadULong()
			if err != nil || ul != s.UL {
				return false
			}
			ll, err := d.ReadLongLong()
			if err != nil || ll != s.LL {
				return false
			}
			ull, err := d.ReadULongLong()
			if err != nil || ull != s.ULL {
				return false
			}
			fl, err := d.ReadFloat()
			if err != nil {
				return false
			}
			if fl != s.F && !(math.IsNaN(float64(fl)) && math.IsNaN(float64(s.F))) {
				return false
			}
			db, err := d.ReadDouble()
			if err != nil {
				return false
			}
			if db != s.D && !(math.IsNaN(db) && math.IsNaN(s.D)) {
				return false
			}
			str, err := d.ReadString()
			if err != nil || str != s.Str {
				return false
			}
			blob, err := d.ReadOctetSeq()
			if err != nil || !bytes.Equal(blob, s.Blob) {
				return false
			}
			return d.Remaining() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("order %d: %v", order, err)
		}
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	for _, order := range []byte{BigEndian, LittleEndian} {
		enc := EncodeEncapsulation(order, func(e *Encoder) {
			e.WriteULong(42)
			e.WriteString("profile")
		})
		d, err := DecodeEncapsulation(enc)
		if err != nil {
			t.Fatalf("DecodeEncapsulation: %v", err)
		}
		n, err := d.ReadULong()
		if err != nil || n != 42 {
			t.Fatalf("ReadULong = %d, %v; want 42", n, err)
		}
		s, err := d.ReadString()
		if err != nil || s != "profile" {
			t.Fatalf("ReadString = %q, %v; want \"profile\"", s, err)
		}
	}
}

func TestEncapsulationErrors(t *testing.T) {
	if _, err := DecodeEncapsulation(nil); err != ErrTruncated {
		t.Errorf("empty: got %v, want ErrTruncated", err)
	}
	if _, err := DecodeEncapsulation([]byte{9}); err != ErrBadOrder {
		t.Errorf("bad order: got %v, want ErrBadOrder", err)
	}
}

func TestDecoderAlignSkipsPadding(t *testing.T) {
	// One octet then an aligned ulong: decoder must skip the 3 pad bytes.
	e := NewEncoder(BigEndian)
	e.WriteOctet(1)
	e.WriteULong(0xDEADBEEF)
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadULong()
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("got %x, %v", v, err)
	}
}

func TestResetReusesBuffer(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.WriteOctet(9)
	if !bytes.Equal(e.Bytes(), []byte{9}) {
		t.Fatalf("got % x", e.Bytes())
	}
}
