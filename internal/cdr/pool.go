package cdr

import "sync"

// maxPooledBuf bounds the capacity of buffers retained by the encoder
// pool; releasing an encoder whose buffer grew beyond this drops the
// buffer so one giant state transfer does not pin memory forever.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{
	New: func() any { return new(Encoder) },
}

// initialBufCap seeds encoders whose buffer was detached by TakeBytes.
// Most frames (GIOP requests/replies, totem control packets) fit, so a
// marshal costs exactly one allocation — the result buffer itself —
// instead of a chain of append doublings from nil.
const initialBufCap = 512

// GetEncoder returns a pooled Encoder reset to the given byte order. Pair
// it with Release on every path; encoders whose buffer was detached with
// TakeBytes may (and should) still be Released.
func GetEncoder(order byte) *Encoder {
	e := encPool.Get().(*Encoder)
	e.little = order == LittleEndian
	if e.buf == nil {
		e.buf = make([]byte, 0, initialBufCap)
	} else {
		e.buf = e.buf[:0]
	}
	return e
}

// GetEncoderSized is GetEncoder with a capacity hint: the returned
// encoder's buffer holds at least capHint bytes. A marshal whose size is
// known up front costs one allocation of roughly that size — an
// exact-size buffer for a large coalesced frame instead of a chain of
// append doublings, a small buffer for a packet much smaller than the
// 512-byte seed (the circulating token) instead of the seed. A hint of 0
// behaves exactly like GetEncoder. Underestimated hints stay correct:
// the buffer grows by append like any other.
func GetEncoderSized(order byte, capHint int) *Encoder {
	e := encPool.Get().(*Encoder)
	e.little = order == LittleEndian
	switch {
	case capHint <= 0:
		capHint = initialBufCap
	case capHint < 64:
		capHint = 64
	}
	if cap(e.buf) < capHint {
		e.buf = make([]byte, 0, capHint)
	} else {
		e.buf = e.buf[:0]
	}
	return e
}

// Grow ensures capacity for at least n further bytes, so callers that know
// the rough frame size up front (e.g. a GIOP message wrapping an existing
// body) pay a single allocation instead of successive doublings.
func (e *Encoder) Grow(n int) {
	if cap(e.buf)-len(e.buf) >= n {
		return
	}
	nb := make([]byte, len(e.buf), len(e.buf)+n)
	copy(nb, e.buf)
	e.buf = nb
}

// Release returns the encoder to the pool. The caller must not use the
// encoder, nor any slice still aliasing its internal buffer (Bytes), after
// Release; buffers handed off with TakeBytes are unaffected.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// TakeBytes detaches and returns the encoded buffer, transferring
// ownership to the caller: the encoder forgets the buffer, so a
// subsequent Release recycles only the Encoder struct and later encoding
// starts a fresh buffer. This is the zero-copy replacement for the
// Bytes-then-copy idiom on paths whose result outlives the encoder (e.g.
// a marshalled frame handed to the network layer).
func (e *Encoder) TakeBytes() []byte {
	b := e.buf
	e.buf = nil
	return b
}
