package cdr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func allScalarValues() []Value {
	return []Value{
		Void(),
		Bool(true), Bool(false),
		Octet(0), Octet(255),
		Short(-32768), Short(32767),
		UShort(0), UShort(65535),
		Long(-2147483648), Long(2147483647),
		ULong(0), ULong(4294967295),
		LongLong(-9223372036854775808), LongLong(9223372036854775807),
		ULongLong(0), ULongLong(18446744073709551615),
		Float(3.5), Float(-0.25),
		Double(2.718281828), Double(-1e300),
		Str(""), Str("invocation"),
		OctetSeq(nil), OctetSeq([]byte{1, 2, 3}),
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := allScalarValues()
	vals = append(vals, Seq(Long(1), Str("nested"), Seq(Bool(true))))
	for _, order := range []byte{BigEndian, LittleEndian} {
		for _, v := range vals {
			e := NewEncoder(order)
			EncodeValue(e, v)
			d := NewDecoder(e.Bytes(), order)
			got, err := DecodeValue(d)
			if err != nil {
				t.Fatalf("DecodeValue(%v): %v", v, err)
			}
			if !got.Equal(v) {
				t.Errorf("round trip of %v gave %v", v, got)
			}
		}
	}
}

func TestValuesRoundTrip(t *testing.T) {
	body := []Value{Str("deposit"), Double(12.5), Long(-3), OctetSeq([]byte{0xCA, 0xFE})}
	e := NewEncoder(BigEndian)
	EncodeValues(e, body)
	d := NewDecoder(e.Bytes(), BigEndian)
	got, err := DecodeValues(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(body) {
		t.Fatalf("got %d values, want %d", len(got), len(body))
	}
	for i := range body {
		if !got[i].Equal(body[i]) {
			t.Errorf("value %d: got %v, want %v", i, got[i], body[i])
		}
	}
}

func TestDecodeValueUnknownKind(t *testing.T) {
	d := NewDecoder([]byte{0xEE}, BigEndian)
	if _, err := DecodeValue(d); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestValueAccessors(t *testing.T) {
	if Short(-7).AsShort() != -7 {
		t.Error("AsShort")
	}
	if Long(-70000).AsLong() != -70000 {
		t.Error("AsLong")
	}
	if LongLong(-1<<40).AsLongLong() != -1<<40 {
		t.Error("AsLongLong")
	}
	if ULong(4000000000).AsULong() != 4000000000 {
		t.Error("AsULong")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString")
	}
	if Octet(9).AsOctet() != 9 {
		t.Error("AsOctet")
	}
	if UShort(99).AsUShort() != 99 {
		t.Error("AsUShort")
	}
	if Double(0.5).AsDouble() != 0.5 {
		t.Error("AsDouble")
	}
	if ULongLong(12).AsULongLong() != 12 {
		t.Error("AsULongLong")
	}
	if !Bool(true).AsBool() {
		t.Error("AsBool")
	}
	if len(OctetSeq([]byte{1}).AsOctetSeq()) != 1 {
		t.Error("AsOctetSeq")
	}
	if len(Seq(Void()).AsSeq()) != 1 {
		t.Error("AsSeq")
	}
}

func TestValueEqualDifferentKinds(t *testing.T) {
	if Long(1).Equal(ULong(1)) {
		t.Error("different kinds must not be equal")
	}
	if Seq(Long(1)).Equal(Seq(Long(2))) {
		t.Error("different nested payloads must not be equal")
	}
	if Seq(Long(1)).Equal(Seq(Long(1), Long(2))) {
		t.Error("different lengths must not be equal")
	}
	if OctetSeq([]byte{1}).Equal(OctetSeq([]byte{2})) {
		t.Error("different bytes must not be equal")
	}
	if OctetSeq([]byte{1}).Equal(OctetSeq([]byte{1, 2})) {
		t.Error("different byte lengths must not be equal")
	}
}

func TestValueStringNonEmpty(t *testing.T) {
	vals := allScalarValues()
	vals = append(vals, Seq(Long(1)))
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("empty String() for kind %v", v.Kind)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind String() empty")
	}
}

// randomValue builds a random Value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(14)
	if depth <= 0 && k == 13 {
		k = 5
	}
	switch k {
	case 0:
		return Void()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Octet(byte(r.Uint32()))
	case 3:
		return Short(int16(r.Uint32()))
	case 4:
		return UShort(uint16(r.Uint32()))
	case 5:
		return Long(int32(r.Uint32()))
	case 6:
		return ULong(r.Uint32())
	case 7:
		return LongLong(int64(r.Uint64()))
	case 8:
		return ULongLong(r.Uint64())
	case 9:
		return Float(r.Float32())
	case 10:
		return Double(r.Float64())
	case 11:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return Str(string(b))
	case 12:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return OctetSeq(b)
	default:
		n := r.Intn(4)
		seq := make([]Value, n)
		for i := range seq {
			seq[i] = randomValue(r, depth-1)
		}
		return Value{Kind: KindSeq, Seq: seq}
	}
}

// TestValueRoundTripQuick property-tests EncodeValue/DecodeValue over
// randomly generated (possibly nested) values.
func TestValueRoundTripQuick(t *testing.T) {
	f := func(seed int64, littleOrder bool) bool {
		r := rand.New(rand.NewSource(seed))
		order := byte(BigEndian)
		if littleOrder {
			order = LittleEndian
		}
		v := randomValue(r, 3)
		e := NewEncoder(order)
		EncodeValue(e, v)
		d := NewDecoder(e.Bytes(), order)
		got, err := DecodeValue(d)
		return err == nil && got.Equal(v) && d.Remaining() == 0
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestValueEqualReflexiveQuick checks Equal is reflexive and agrees with
// reflect.DeepEqual on freshly decoded copies.
func TestValueEqualReflexiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 2)
		if !v.Equal(v) {
			return false
		}
		e := NewEncoder(BigEndian)
		EncodeValue(e, v)
		d := NewDecoder(e.Bytes(), BigEndian)
		got, err := DecodeValue(d)
		if err != nil {
			return false
		}
		// Decoded copy must be structurally identical apart from nil/empty
		// slice normalization.
		return got.Equal(v) && v.Equal(got) || reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
