package idl

import "fmt"

// TypeKind enumerates the supported IDL types.
type TypeKind uint8

// Supported type kinds.
const (
	TVoid TypeKind = iota + 1
	TBoolean
	TOctet
	TShort
	TUShort
	TLong
	TULong
	TLongLong
	TULongLong
	TFloat
	TDouble
	TString
	TSequence
)

// Type is an IDL type; Elem is set for sequences.
type Type struct {
	Kind TypeKind
	Elem *Type
}

// IsVoid reports whether the type is void.
func (t Type) IsVoid() bool { return t.Kind == TVoid }

// String renders the IDL spelling.
func (t Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TBoolean:
		return "boolean"
	case TOctet:
		return "octet"
	case TShort:
		return "short"
	case TUShort:
		return "unsigned short"
	case TLong:
		return "long"
	case TULong:
		return "unsigned long"
	case TLongLong:
		return "long long"
	case TULongLong:
		return "unsigned long long"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TString:
		return "string"
	case TSequence:
		return fmt.Sprintf("sequence<%s>", t.Elem)
	default:
		return fmt.Sprintf("type(%d)", t.Kind)
	}
}

// Member is a named, typed field (exception members, parameters).
type Member struct {
	Name string
	Type Type
}

// Exception is an IDL exception declaration.
type Exception struct {
	Name    string
	Members []Member
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Oneway bool
	Result Type
	Params []Member
	Raises []string // exception names (resolved within the module)
}

// Attribute is a readonly attribute (mapped to a `_get_<name>` operation).
type Attribute struct {
	Name string
	Type Type
}

// Interface is an IDL interface declaration.
type Interface struct {
	Name       string
	Operations []Operation
	Attributes []Attribute
}

// RepoID returns the interface repository id within module mod.
func (i *Interface) RepoID(mod string) string {
	return fmt.Sprintf("IDL:%s/%s:1.0", mod, i.Name)
}

// Module is one parsed IDL module.
type Module struct {
	Name       string
	Exceptions []Exception
	Interfaces []Interface
}

// exception looks an exception up by name.
func (m *Module) exception(name string) (*Exception, bool) {
	for i := range m.Exceptions {
		if m.Exceptions[i].Name == name {
			return &m.Exceptions[i], true
		}
	}
	return nil, false
}
