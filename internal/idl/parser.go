package idl

import (
	"fmt"
)

// Parse compiles IDL source into a Module. Exactly one module per file is
// supported (the common layout for a service definition).
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	mod, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after module", p.tok)
	}
	if err := p.resolve(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("idl: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errorf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errorf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	mod := &Module{Name: name}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		switch {
		case p.tok.kind == tokKeyword && p.tok.text == "exception":
			exc, err := p.parseException()
			if err != nil {
				return nil, err
			}
			mod.Exceptions = append(mod.Exceptions, *exc)
		case p.tok.kind == tokKeyword && p.tok.text == "interface":
			iface, err := p.parseInterface()
			if err != nil {
				return nil, err
			}
			mod.Interfaces = append(mod.Interfaces, *iface)
		case p.tok.kind == tokKeyword &&
			(p.tok.text == "struct" || p.tok.text == "union" || p.tok.text == "typedef" ||
				p.tok.text == "enum" || p.tok.text == "const"):
			return nil, p.errorf("%s declarations are not supported by this IDL subset", p.tok)
		default:
			return nil, p.errorf("expected declaration, found %s", p.tok)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return mod, nil
}

func (p *parser) parseException() (*Exception, error) {
	if err := p.advance(); err != nil { // consume 'exception'
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	exc := &Exception{Name: name}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		memberName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		exc.Members = append(exc.Members, Member{Name: memberName, Type: typ})
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return exc, nil
}

func (p *parser) parseInterface() (*Interface, error) {
	if err := p.advance(); err != nil { // consume 'interface'
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPunct && p.tok.text == ":" {
		return nil, p.errorf("interface inheritance is not supported by this IDL subset")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	iface := &Interface{Name: name}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		switch {
		case p.tok.kind == tokKeyword && p.tok.text == "readonly":
			attr, err := p.parseAttribute()
			if err != nil {
				return nil, err
			}
			iface.Attributes = append(iface.Attributes, *attr)
		case p.tok.kind == tokKeyword && p.tok.text == "attribute":
			return nil, p.errorf("writable attributes are not supported (use readonly attribute)")
		default:
			op, err := p.parseOperation()
			if err != nil {
				return nil, err
			}
			iface.Operations = append(iface.Operations, *op)
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return iface, nil
}

func (p *parser) parseAttribute() (*Attribute, error) {
	if err := p.advance(); err != nil { // consume 'readonly'
		return nil, err
	}
	if err := p.expectKeyword("attribute"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Attribute{Name: name, Type: typ}, nil
}

func (p *parser) parseOperation() (*Operation, error) {
	op := &Operation{}
	if p.tok.kind == tokKeyword && p.tok.text == "oneway" {
		op.Oneway = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var err error
	op.Result, err = p.parseReturnType()
	if err != nil {
		return nil, err
	}
	if op.Oneway && !op.Result.IsVoid() {
		return nil, p.errorf("oneway operation must return void")
	}
	op.Name, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		if len(op.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		op.Params = append(op.Params, *param)
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	if p.tok.kind == tokKeyword && p.tok.text == "raises" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if op.Oneway {
			return nil, p.errorf("oneway operation cannot raise exceptions")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			op.Raises = append(op.Raises, name)
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return op, nil
}

func (p *parser) parseParam() (*Member, error) {
	if p.tok.kind == tokKeyword && (p.tok.text == "out" || p.tok.text == "inout") {
		return nil, p.errorf("%s parameters are not supported (return results instead)", p.tok)
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &Member{Name: name, Type: typ}, nil
}

func (p *parser) parseReturnType() (Type, error) {
	if p.tok.kind == tokKeyword && p.tok.text == "void" {
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		return Type{Kind: TVoid}, nil
	}
	return p.parseType()
}

func (p *parser) parseType() (Type, error) {
	if p.tok.kind != tokKeyword {
		return Type{}, p.errorf("expected type, found %s", p.tok)
	}
	switch p.tok.text {
	case "boolean":
		return p.simpleType(TBoolean)
	case "octet":
		return p.simpleType(TOctet)
	case "short":
		return p.simpleType(TShort)
	case "float":
		return p.simpleType(TFloat)
	case "double":
		return p.simpleType(TDouble)
	case "string":
		return p.simpleType(TString)
	case "any":
		return Type{}, p.errorf("the any type is not supported by this IDL subset")
	case "long":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		if p.tok.kind == tokKeyword && p.tok.text == "long" {
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			return Type{Kind: TLongLong}, nil
		}
		return Type{Kind: TLong}, nil
	case "unsigned":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		switch {
		case p.tok.kind == tokKeyword && p.tok.text == "short":
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			return Type{Kind: TUShort}, nil
		case p.tok.kind == tokKeyword && p.tok.text == "long":
			if err := p.advance(); err != nil {
				return Type{}, err
			}
			if p.tok.kind == tokKeyword && p.tok.text == "long" {
				if err := p.advance(); err != nil {
					return Type{}, err
				}
				return Type{Kind: TULongLong}, nil
			}
			return Type{Kind: TULong}, nil
		default:
			return Type{}, p.errorf("expected short or long after unsigned, found %s", p.tok)
		}
	case "sequence":
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		if err := p.expectPunct("<"); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if err := p.expectPunct(">"); err != nil {
			return Type{}, err
		}
		return Type{Kind: TSequence, Elem: &elem}, nil
	default:
		return Type{}, p.errorf("expected type, found %s", p.tok)
	}
}

func (p *parser) simpleType(kind TypeKind) (Type, error) {
	if err := p.advance(); err != nil {
		return Type{}, err
	}
	return Type{Kind: kind}, nil
}

// resolve validates cross-references: every raises clause names a declared
// exception, and names are unique.
func (p *parser) resolve(mod *Module) error {
	seen := make(map[string]bool)
	for _, e := range mod.Exceptions {
		if seen[e.Name] {
			return fmt.Errorf("idl: duplicate declaration %s", e.Name)
		}
		seen[e.Name] = true
	}
	for _, i := range mod.Interfaces {
		if seen[i.Name] {
			return fmt.Errorf("idl: duplicate declaration %s", i.Name)
		}
		seen[i.Name] = true
		opNames := make(map[string]bool)
		for _, op := range i.Operations {
			if opNames[op.Name] {
				return fmt.Errorf("idl: duplicate operation %s.%s", i.Name, op.Name)
			}
			opNames[op.Name] = true
			for _, r := range op.Raises {
				if _, ok := mod.exception(r); !ok {
					return fmt.Errorf("idl: operation %s.%s raises undeclared exception %s", i.Name, op.Name, r)
				}
			}
		}
		for _, a := range i.Attributes {
			if opNames[a.Name] {
				return fmt.Errorf("idl: attribute %s.%s collides with an operation", i.Name, a.Name)
			}
		}
	}
	return nil
}
