package idl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenBankExample keeps the checked-in generated code of
// examples/bankidl in sync with the generator: the example compiles as
// part of the module, so this also proves generated code builds.
func TestGoldenBankExample(t *testing.T) {
	root := filepath.Join("..", "..", "examples", "bankidl")
	src, err := os.ReadFile(filepath.Join(root, "bank.idl"))
	if err != nil {
		t.Skipf("example IDL not present: %v", err)
	}
	mod, err := Parse(string(src))
	if err != nil {
		t.Fatalf("parse bank.idl: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(root, "bankgen", "bank_gen.go"))
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	got, err := Generate(mod, "bankgen")
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("generated code differs from examples/bankidl/bankgen/bank_gen.go — regenerate with:\n" +
			"  go run ./cmd/idlgen -pkg bankgen -o examples/bankidl/bankgen/bank_gen.go examples/bankidl/bank.idl")
	}
}
