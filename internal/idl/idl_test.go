package idl

import (
	"strings"
	"testing"
)

const bankIDL = `
// Banking example.
#pragma prefix "example"
module Bank {
  exception InsufficientFunds {
    long long balance;
    string reason;
  };
  exception Frozen {};

  interface Account {
    readonly attribute long long balance;
    long long deposit(in long long amount);
    long long withdraw(in long long amount) raises (InsufficientFunds, Frozen);
    void reset();
    oneway void note(in string msg);
    sequence<string> history(in unsigned long limit);
    double rate(in float base, in boolean compound);
    sequence<octet> export_state();
  };

  interface Audit {
    void record(in sequence<long> entries);
  };
};
`

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestParseBank(t *testing.T) {
	mod := mustParse(t, bankIDL)
	if mod.Name != "Bank" {
		t.Fatalf("module = %q", mod.Name)
	}
	if len(mod.Exceptions) != 2 || len(mod.Interfaces) != 2 {
		t.Fatalf("decls = %d exceptions, %d interfaces", len(mod.Exceptions), len(mod.Interfaces))
	}
	acct := mod.Interfaces[0]
	if acct.Name != "Account" || len(acct.Operations) != 7 || len(acct.Attributes) != 1 {
		t.Fatalf("Account = %+v", acct)
	}
	if acct.RepoID("Bank") != "IDL:Bank/Account:1.0" {
		t.Errorf("RepoID = %q", acct.RepoID("Bank"))
	}

	w := acct.Operations[1]
	if w.Name != "withdraw" || len(w.Raises) != 2 || w.Raises[0] != "InsufficientFunds" {
		t.Errorf("withdraw = %+v", w)
	}
	if !acct.Operations[3].Oneway && acct.Operations[3].Name == "note" {
		t.Errorf("note should be oneway: %+v", acct.Operations[3])
	}
	hist := acct.Operations[4]
	if hist.Result.Kind != TSequence || hist.Result.Elem.Kind != TString {
		t.Errorf("history result = %v", hist.Result)
	}
	if hist.Params[0].Type.Kind != TULong {
		t.Errorf("history param = %v", hist.Params[0].Type)
	}
	exp := acct.Operations[6]
	if exp.Result.Kind != TSequence || exp.Result.Elem.Kind != TOctet {
		t.Errorf("export_state result = %v", exp.Result)
	}
}

func TestParseTypeSpellings(t *testing.T) {
	mod := mustParse(t, `
module T {
  interface I {
    void all(in boolean b, in octet o, in short s, in unsigned short us,
             in long l, in unsigned long ul, in long long ll,
             in unsigned long long ull, in float f, in double d,
             in string str, in sequence<sequence<long>> nested);
  };
};`)
	params := mod.Interfaces[0].Operations[0].Params
	wantKinds := []TypeKind{TBoolean, TOctet, TShort, TUShort, TLong, TULong,
		TLongLong, TULongLong, TFloat, TDouble, TString, TSequence}
	if len(params) != len(wantKinds) {
		t.Fatalf("params = %d", len(params))
	}
	for i, k := range wantKinds {
		if params[i].Type.Kind != k {
			t.Errorf("param %d kind = %v, want %v", i, params[i].Type.Kind, k)
		}
	}
	nested := params[11].Type
	if nested.Elem.Kind != TSequence || nested.Elem.Elem.Kind != TLong {
		t.Errorf("nested = %v", nested)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing module", `interface I {};`, "expected \"module\""},
		{"struct unsupported", `module M { struct S { long x; }; };`, "not supported"},
		{"any unsupported", `module M { interface I { void f(in any a); }; };`, "not supported"},
		{"out unsupported", `module M { interface I { void f(out long a); }; };`, "not supported"},
		{"inheritance", `module M { interface A {}; interface B : A {}; };`, "inheritance"},
		{"oneway nonvoid", `module M { interface I { oneway long f(); }; };`, "must return void"},
		{"oneway raises", `module M { exception E {}; interface I { oneway void f() raises (E); }; };`, "cannot raise"},
		{"unknown raise", `module M { interface I { void f() raises (Nope); }; };`, "undeclared exception"},
		{"dup op", `module M { interface I { void f(); void f(); }; };`, "duplicate operation"},
		{"dup decl", `module M { exception E {}; interface E {}; };`, "duplicate declaration"},
		{"writable attr", `module M { interface I { attribute long x; }; };`, "readonly"},
		{"bad char", `module M { interface I { void f(); }; }; $`, "unexpected character"},
		{"unterminated comment", `module M { /* oops`, "unterminated"},
		{"trailing garbage", `module M {}; module N {};`, "after module"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
			}
		})
	}
}

func TestGoNameMapping(t *testing.T) {
	cases := map[string]string{
		"deposit":       "Deposit",
		"export_state":  "ExportState",
		"a_b_c":         "ABC",
		"alreadyCamel":  "AlreadyCamel",
		"_underscore":   "Underscore",
		"balance_value": "BalanceValue",
	}
	for in, want := range cases {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateBank(t *testing.T) {
	mod := mustParse(t, bankIDL)
	code, err := Generate(mod, "bankgen")
	if err != nil {
		t.Fatal(err)
	}
	src := string(code)
	for _, want := range []string{
		"package bankgen",
		`const AccountTypeID = "IDL:Bank/Account:1.0"`,
		`const InsufficientFundsTypeID = "IDL:Bank/InsufficientFunds:1.0"`,
		"type Account interface {",
		"Deposit(inv *orb.Invocation, amount int64) (int64, error)",
		"Withdraw(inv *orb.Invocation, amount int64) (int64, error)",
		"Balance(inv *orb.Invocation) (int64, error)", // readonly attribute
		"Note(inv *orb.Invocation, msg string) error", // oneway
		"History(inv *orb.Invocation, limit uint32) ([]string, error)",
		"ExportState(inv *orb.Invocation) ([]byte, error)",
		"func NewAccountServant(impl Account) *orb.MethodServant",
		"type AccountStub struct",
		"func NewAccountStub(inv Invoker) *AccountStub",
		`s.inv.InvokeOneway("note"`, // oneway goes through the oneway path
		`"_get_balance"`,            // attribute mapping
		"func encStringSeq(",        // sequence<string> helper
		"func decInt32Seq(",         // sequence<long> helper (Audit)
		"type InsufficientFunds struct",
		"Balance int64", // struct member mapping
		"Reason",        // (gofmt may align the column)
		"func wrapError(err error) error",
		"func unwrapError(err error) error",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateNoExceptions(t *testing.T) {
	mod := mustParse(t, `module M { interface I { void ping(); }; };`)
	code, err := Generate(mod, "mgen")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "func wrapError(err error) error {\n\treturn err\n}") {
		t.Error("exception-free module should generate pass-through wrapError")
	}
}

func TestTypeStrings(t *testing.T) {
	seq := Type{Kind: TSequence, Elem: &Type{Kind: TSequence, Elem: &Type{Kind: TULongLong}}}
	if seq.String() != "sequence<sequence<unsigned long long>>" {
		t.Errorf("String = %q", seq.String())
	}
	if !(Type{Kind: TVoid}).IsVoid() || (Type{Kind: TLong}).IsVoid() {
		t.Error("IsVoid broken")
	}
}
