// Package idl implements a compiler for a subset of CORBA IDL: it parses
// interface definitions and generates Go stubs (client proxies) and
// skeletons (servant adapters) for this repository's ORB and replication
// engine — the role the IDL compiler plays in a real CORBA system.
//
// Supported subset: modules; interfaces with operations (in parameters,
// oneway, raises) and readonly attributes; exceptions with members; basic
// types (boolean, octet, short/unsigned short, long/unsigned long,
// long long/unsigned long long, float, double, string), and sequences
// thereof. Unsupported (rejected with errors, not silently ignored):
// structs, unions, inheritance, out/inout parameters, arrays, any.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokPunct // { } ( ) < > ; , : ::
)

// keywords of the supported subset (plus those we must recognize to give
// good errors for unsupported constructs).
var keywords = map[string]bool{
	"module": true, "interface": true, "exception": true,
	"oneway": true, "void": true, "in": true, "out": true, "inout": true,
	"raises": true, "readonly": true, "attribute": true,
	"boolean": true, "octet": true, "short": true, "long": true,
	"unsigned": true, "float": true, "double": true, "string": true,
	"sequence": true, "struct": true, "union": true, "typedef": true,
	"any": true, "const": true, "enum": true,
}

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer scans IDL source into tokens, skipping //, /* */ comments and the
// preprocessor lines (#include, #pragma) real IDL files carry.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("idl: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			// Preprocessor directive: skip to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errorf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scanToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case c == ':' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
		l.pos += 2
		return token{kind: tokPunct, text: "::", line: l.line}, nil
	case strings.ContainsRune("{}()<>;,:", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
