package repro

import (
	"testing"

	"repro/internal/bench"
)

// --- PR5 sharded-transport benchmarks ----------------------------------------
//
// These are the benchmark-scale version of experiment E2′ (see
// internal/bench/e2prime.go and EXPERIMENTS.md): aggregate throughput of
// independent ACTIVE/3 groups over R transport rings. ns/op is the wall
// clock of one full workload run including domain setup; the headline
// number is the ops/s metric, which times only the drive phase and is
// directly comparable across shard counts. `make bench` snapshots both
// into BENCH_pr5.json.

func benchSharded(b *testing.B, shards, groups int) {
	// PerClient is sized so the drive phase dominates domain setup;
	// shorter runs are startup-transient noise.
	w := bench.ShardedWorkload{
		Shards: shards, Groups: groups, Replicas: 3,
		Clients: 2, PerClient: 50,
	}
	var agg float64
	for i := 0; i < b.N; i++ {
		thr, err := bench.RunSharded(w)
		if err != nil {
			b.Fatal(err)
		}
		agg += thr
	}
	b.ReportMetric(agg/float64(b.N), "ops/s")
}

func BenchmarkPR5ShardedAggregateR1(b *testing.B) { benchSharded(b, 1, 8) }
func BenchmarkPR5ShardedAggregateR2(b *testing.B) { benchSharded(b, 2, 8) }
func BenchmarkPR5ShardedAggregateR4(b *testing.B) { benchSharded(b, 4, 8) }

// BenchmarkPR5SingleGroupR4 is the control row: one group rides one ring no
// matter how many exist (per-group total order is the invariant), so this
// must stay within noise of a single-ring run.
func BenchmarkPR5SingleGroupR4(b *testing.B) { benchSharded(b, 4, 1) }
