GO ?= go

.PHONY: check race bench test build vet chaos

## check: vet + build + full test suite (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detect the concurrency-heavy layers
race:
	$(GO) test -race ./internal/totem ./internal/replication

## chaos: the full seeded fault-injection sweep under the race detector
## (7 seeds x 3 replication styles = 21 schedules, plus the targeted
## coalescing/recovery fault tests)
chaos:
	CHAOS_SEEDS=7 $(GO) test -race -count=1 ./internal/chaos

## bench: run the PR2 hot-path benchmarks and snapshot them to BENCH_pr2.json
bench:
	$(GO) test -run '^$$' -bench 'PR2' -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_pr2.json
