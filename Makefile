GO ?= go

.PHONY: check race bench benchcmp test build vet chaos slo slo-smoke mp-smoke dr-smoke fd-smoke lf-smoke

## check: vet + build + full test suite (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detect the concurrency-heavy layers, including the transport
## conformance suite on both backends (netsim and loopback UDP)
race:
	$(GO) test -race ./internal/totem ./internal/replication ./internal/netsim ./internal/transport/...

## chaos: the full seeded fault-injection sweep under the race detector —
## single-ring (7 seeds x 3 replication styles = 21 schedules) plus the
## sharded sweep (R=2, shard-partition episodes included) and the targeted
## coalescing/recovery fault tests
chaos:
	CHAOS_SEEDS=7 $(GO) test -race -count=1 ./internal/chaos

## bench: snapshot the PR2 hot-path + PR5 sharded-transport benchmarks,
## the full-profile SLO workload percentiles (~10^6-client population over
## 1024 groups plus a 6-episode chaos phase, ~75s), the PR7 multi-process
## loopback-UDP throughput cells, the PR8 disaster-recovery RPO/RTO
## measurement, the PR9 fail-detection sweep (storm false evictions,
## confirmed-crash detection latency), and the PR10 leader-follower
## latency sweep (leased read vs idle-token pacing, direct-lane write vs
## ACTIVE, leader-crash blackout) into BENCH_pr10.json
bench:
	$(GO) test -run '^$$' -bench 'PR2|PR5' -benchmem -timeout 30m ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_pr10.json
	$(GO) run ./cmd/ftbench -e slo -seed 1 -json BENCH_pr10.json
	$(GO) run ./cmd/ftbench -e e2mp -json BENCH_pr10.json
	$(GO) run ./cmd/ftbench -e dr -json BENCH_pr10.json
	$(GO) run ./cmd/ftbench -e fd -json BENCH_pr10.json
	$(GO) run ./cmd/ftbench -e lf -json BENCH_pr10.json

## benchcmp: fail on adverse drift vs the frozen baselines, merged
## first-match-wins — BENCH_pr10_base.json first (the leader-follower
## records: read_p99_us gates with a wide µs-scale threshold, blackout_ms
## against the deterministic lease fence; plus the PR5 single-ring
## aggregate cell re-frozen for the idle-detection fix — the ring now
## rotates ~2x faster instead of being wrongly throttled, which shifts
## its allocs/op profile), then BENCH_pr9_base.json (the
## fd detection records: false_evictions gates at zero, detect_ms with a
## wide threshold; plus the SLO percentiles re-frozen for the adaptive
## detector's confirm-grace blackout shift), BENCH_pr8_base.json (DR
## RPO/RTO: rpo_ops and eo_violations gate at zero, rto_ms with a wide
## threshold), BENCH_pr2.json and BENCH_pr5.json for the
## micro-benchmarks, BENCH_pr6_base.json for the remaining SLO metrics,
## and BENCH_pr7_base.json for the multi-process throughput cells (ops_s
## gates with a wide single-core-noise threshold; vs_baseline is
## informational)
benchcmp:
	$(GO) run ./cmd/benchcmp -threshold 20 BENCH_pr10_base.json,BENCH_pr9_base.json,BENCH_pr8_base.json,BENCH_pr2.json,BENCH_pr5.json,BENCH_pr6_base.json,BENCH_pr7_base.json BENCH_pr10.json

## slo: re-run just the SLO evaluation, upserting into BENCH_pr10.json
slo:
	$(GO) run ./cmd/ftbench -e slo -seed 1 -json BENCH_pr10.json

## slo-smoke: seconds-long tail-latency sanity gate (two seeds); fails if
## the calm-phase p999 blows past 500ms
slo-smoke:
	$(GO) run ./cmd/ftbench -e slo -smoke -seed 1 -p999max 500ms
	$(GO) run ./cmd/ftbench -e slo -smoke -seed 2 -p999max 500ms

## dr-smoke: seconds-long disaster-recovery smoke — kills the primary
## domain mid-load, promotes the warm standby, and fails on any lost
## acknowledged operation (RPO > 0) or exactly-once violation
dr-smoke:
	$(GO) run ./cmd/ftbench -e dr -smoke

## fd-smoke: seconds-long fail-detection smoke — one provisioning-storm
## cell with a real mid-storm crash; fails on any false eviction or an
## unconfirmed crash
fd-smoke:
	$(GO) run ./cmd/ftbench -e fd -smoke

## lf-smoke: seconds-long leader-follower smoke — one pacing cell of the
## leased-read / direct-lane-write sweep plus the leader-crash blackout
## measurement, so CI exercises the LF fast path, the order stream, and
## the mid-stream handover end-to-end without the full sweep
lf-smoke:
	$(GO) run ./cmd/ftbench -e lf -smoke

## mp-smoke: seconds-long multi-process deployment smoke — every e2mp cell
## spawns real replica-node child processes with ring traffic on loopback
## UDP, so CI exercises spawn/readiness/teardown and the UDP backend
## end-to-end without the full measurement run
mp-smoke:
	$(GO) run ./cmd/ftbench -e e2mp -smoke
