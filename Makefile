GO ?= go

.PHONY: check race bench benchcmp test build vet chaos

## check: vet + build + full test suite (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detect the concurrency-heavy layers
race:
	$(GO) test -race ./internal/totem ./internal/replication

## chaos: the full seeded fault-injection sweep under the race detector —
## single-ring (7 seeds x 3 replication styles = 21 schedules) plus the
## sharded sweep (R=2, shard-partition episodes included) and the targeted
## coalescing/recovery fault tests
chaos:
	CHAOS_SEEDS=7 $(GO) test -race -count=1 ./internal/chaos

## bench: run the PR2 hot-path + PR5 sharded-transport benchmarks and
## snapshot them to BENCH_pr5.json (BENCH_pr2.json stays the frozen PR2
## baseline that benchcmp gates against)
bench:
	$(GO) test -run '^$$' -bench 'PR2|PR5' -benchmem -timeout 30m ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_pr5.json

## benchcmp: fail on >20% ns/op regression vs the PR2 baseline snapshot
benchcmp:
	$(GO) run ./cmd/benchcmp -threshold 20 BENCH_pr2.json BENCH_pr5.json
