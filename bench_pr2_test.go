package repro

import (
	"sync"
	"testing"

	"repro/internal/giop"
)

// --- PR2 hot-path benchmarks -------------------------------------------------
//
// These benchmarks track the replicated invocation hot path end-to-end and
// the marshalling layers under it. They are the regression guard for the
// coalescing + pooled-marshalling work recorded in BENCH_pr2.json; run them
// via `make bench`.

// BenchmarkPR2GIOPMarshal measures the encode side of the GIOP layer alone
// (the path every IIOP request and reply takes). allocs/op is the headline
// number: the marshal path should not copy the frame it just built.
func BenchmarkPR2GIOPMarshal(b *testing.B) {
	req := &giop.Request{
		RequestID:     7,
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("og/42"),
		Operation:     "deposit",
		Contexts: []giop.ServiceContext{
			{ID: giop.SvcFTRequest, Data: giop.FTRequest{ClientID: "c1", RetentionID: 9}.Encode()},
		},
		Body: make([]byte, 256),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := giop.Marshal(req)
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkPR2GIOPMarshalLarge is the same with a 16KiB body, where the
// redundant full-frame copy dominates.
func BenchmarkPR2GIOPMarshalLarge(b *testing.B) {
	req := &giop.Request{
		RequestID:     7,
		ResponseFlags: giop.ResponseExpected,
		ObjectKey:     []byte("og/42"),
		Operation:     "deposit",
		Body:          make([]byte, 16<<10),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := giop.Marshal(req)
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkPR2PipelinedActive3 is the E2-style headline: 8 concurrent
// clients invoking a 3-replica ACTIVE group through one proxy. b.N is the
// total number of invocations across all clients, so ns/op is the
// pipelined per-invocation cost (the inverse of E2's ops/s column).
func BenchmarkPR2PipelinedActive3(b *testing.B) {
	benchPipelined(b, Active, 3, 8)
}

// BenchmarkPR2PipelinedActive1 isolates the protocol floor: one replica,
// same pipelining.
func BenchmarkPR2PipelinedActive1(b *testing.B) {
	benchPipelined(b, Active, 1, 8)
}

// BenchmarkPR2SerialActive3 is the serial (unpipelined) replicated
// latency, matching E1's ACTIVE rows at 256B.
func BenchmarkPR2SerialActive3(b *testing.B) {
	benchInvoke(b, Active, 3)
}

func benchPipelined(b *testing.B, style Style, replicas, clients int) {
	_, _, proxy := benchDomain(b, style, replicas)
	arg := OctetSeq(make([]byte, 256))
	if _, err := proxy.Invoke("echo", arg); err != nil {
		b.Fatal(err)
	}
	work := make(chan struct{})
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for range work {
				if failed {
					continue // keep draining so the feeder never blocks
				}
				if _, err := proxy.Invoke("echo", arg); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}
