// Trader: nested invocations across object groups with *different*
// replication styles — the paper's central interaction scenario.
//
// An actively replicated order desk (every replica executes) books trades
// by invoking a warm-passive settlement ledger (only the primary executes,
// pushing state updates to its backups). Each order-desk replica
// independently issues the nested invocation; the infrastructure's
// operation identifiers let the ledger execute it exactly once and let the
// desk replicas suppress each other's duplicate responses.
//
// Run with:
//
//	go run ./examples/trader
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/cdr"
)

const (
	deskType   = "IDL:example/OrderDesk:1.0"
	ledgerType = "IDL:example/Ledger:1.0"
)

// ledger is the warm-passive settlement book.
type ledger struct {
	mu     sync.Mutex
	trades int64
	volume int64
}

func (l *ledger) RepoID() string { return ledgerType }

func (l *ledger) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch inv.Operation {
	case "settle":
		qty := int64(inv.Args[0].AsLong())
		l.trades++
		l.volume += qty
		// inv.Det supplies replica-consistent logical time: every replica
		// of an active caller sees the same timestamp for the same trade.
		stamp := inv.Det.Now().UnixMicro()
		return []repro.Value{repro.LongLong(l.trades), repro.LongLong(stamp)}, nil
	case "stats":
		return []repro.Value{repro.LongLong(l.trades), repro.LongLong(l.volume)}, nil
	}
	return nil, &repro.UserException{Name: "IDL:example/UnknownOperation:1.0"}
}

func (l *ledger) GetState() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(l.trades)
	e.WriteLongLong(l.volume)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (l *ledger) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	trades, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	volume, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.trades, l.volume = trades, volume
	l.mu.Unlock()
	return nil
}

// newDesk builds the actively replicated order desk: its "buy" operation
// performs the nested invocation on the ledger group.
func newDesk(ledgerGID uint64) repro.Servant {
	return repro.NewMethodServant(deskType).
		Define("buy", func(inv *repro.Invocation) ([]repro.Value, error) {
			qty := inv.Args[0]
			// repro.Nested derives a deterministic operation identifier
			// from the ordered parent invocation, so every desk replica's
			// copy of this call is recognized as the same operation.
			ledgerProxy := repro.Nested(inv, repro.GroupRef{ID: ledgerGID})
			out, err := ledgerProxy.Invoke("settle", qty)
			if err != nil {
				return nil, err
			}
			return []repro.Value{out[0], out[1]}, nil
		})
}

func main() {
	domain, err := repro.NewDomain(repro.Options{
		Nodes: []string{"d1", "d2", "l1", "l2", "l3", "client"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Stop()
	if err := domain.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// The warm-passive ledger lives on l1..l3.
	if err := domain.RegisterFactory(ledgerType,
		func() repro.Servant { return &ledger{} }, "l1", "l2", "l3"); err != nil {
		log.Fatal(err)
	}
	_, ledgerGID, err := domain.Create("ledger", ledgerType, &repro.Properties{
		ReplicationStyle:      repro.WarmPassive,
		InitialNumberReplicas: 3,
		MembershipStyle:       repro.MembershipApplication,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(ledgerGID, 3, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	// The active order desk lives on d1, d2.
	if err := domain.RegisterFactory(deskType,
		func() repro.Servant { return newDesk(ledgerGID) }, "d1", "d2"); err != nil {
		log.Fatal(err)
	}
	_, deskGID, err := domain.Create("desk", deskType, &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 2,
		MembershipStyle:       repro.MembershipApplication,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(deskGID, 2, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	client, err := domain.Proxy("client", deskGID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("placing 10 orders through the active desk -> warm-passive ledger chain")
	for i := 1; i <= 10; i++ {
		out, err := client.Invoke("buy", repro.Long(int32(i*100)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  order %2d: trade #%d at logical time %d\n",
			i, out[0].AsLongLong(), out[1].AsLongLong())
	}

	// The ledger executed each trade exactly once even though both desk
	// replicas invoked it.
	ledgerClient, _ := domain.Proxy("client", ledgerGID)
	out, err := ledgerClient.Invoke("stats")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nledger: %d trades, total volume %d (duplicates from the 2 desk replicas suppressed)\n",
		out[0].AsLongLong(), out[1].AsLongLong())

	// Crash the ledger primary; the chain keeps working.
	members, _ := domain.RM.Members(ledgerGID)
	fmt.Printf("\ncrashing ledger primary %s ...\n", members[0])
	domain.CrashNode(members[0])
	out, err = client.Invoke("buy", repro.Long(9999))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order after failover: trade #%d — warm-passive backup took over with full state\n",
		out[0].AsLongLong())
}
