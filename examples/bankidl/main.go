// Bank (IDL edition): the same replicated-bank scenario, but with the
// stubs and skeletons *generated from CORBA IDL* by cmd/idlgen — the
// development workflow of a real CORBA shop.
//
// bank.idl declares the Bank::Account interface; bankgen/bank_gen.go is
// its compiled form (regenerate with
// `go run ./cmd/idlgen -pkg bankgen -o examples/bankidl/bankgen/bank_gen.go examples/bankidl/bank.idl`).
//
// Run with:
//
//	go run ./examples/bankidl
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/examples/bankidl/bankgen"
	"repro/internal/cdr"
)

// accountImpl implements the *generated* bankgen.Account interface with
// plain typed Go — no manual marshaling anywhere.
type accountImpl struct {
	mu      sync.Mutex
	balance int64
	history []string
}

func (a *accountImpl) Balance(inv *repro.Invocation) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, nil
}

func (a *accountImpl) Deposit(inv *repro.Invocation, amount int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += amount
	// inv.Det.Now() is replica-consistent logical time: every replica logs
	// the identical history line.
	a.history = append(a.history, fmt.Sprintf("%d deposit %d", inv.Det.Now().UnixMicro(), amount))
	return a.balance, nil
}

func (a *accountImpl) Withdraw(inv *repro.Invocation, amount int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if amount > a.balance {
		return 0, &bankgen.InsufficientFunds{Balance: a.balance}
	}
	a.balance -= amount
	a.history = append(a.history, fmt.Sprintf("%d withdraw %d", inv.Det.Now().UnixMicro(), amount))
	return a.balance, nil
}

func (a *accountImpl) History(inv *repro.Invocation, limit uint32) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := a.history
	if int(limit) < len(h) {
		h = h[len(h)-int(limit):]
	}
	return append([]string(nil), h...), nil
}

func (a *accountImpl) Annotate(inv *repro.Invocation, note string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.history = append(a.history, "note: "+note)
	return nil
}

// Checkpointable: lets the infrastructure transfer state to new/recovering
// replicas.
func (a *accountImpl) GetState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(a.balance)
	e.WriteULong(uint32(len(a.history)))
	for _, h := range a.history {
		e.WriteString(h)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (a *accountImpl) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	bal, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	hist := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		h, err := d.ReadString()
		if err != nil {
			return err
		}
		hist = append(hist, h)
	}
	a.mu.Lock()
	a.balance, a.history = bal, hist
	a.mu.Unlock()
	return nil
}

func main() {
	domain, err := repro.NewDomain(repro.Options{
		Nodes: []string{"b1", "b2", "b3", "teller"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Stop()
	if err := domain.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// The generated skeleton adapts accountImpl to the servant model.
	err = domain.RegisterFactory(bankgen.AccountTypeID, func() repro.Servant {
		return bankgen.NewAccountServant(&accountImpl{})
	}, "b1", "b2", "b3")
	if err != nil {
		log.Fatal(err)
	}
	_, gid, err := domain.Create("account", bankgen.AccountTypeID, &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	// The generated stub runs over the replicated group proxy — fully
	// typed calls, typed exceptions.
	proxy, err := domain.Proxy("teller", gid)
	if err != nil {
		log.Fatal(err)
	}
	account := bankgen.NewAccountStub(proxy)

	bal, err := account.Deposit(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deposit 500  -> balance", bal)

	bal, err = account.Withdraw(120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("withdraw 120 -> balance", bal)

	// Typed exception across the wire.
	_, err = account.Withdraw(10_000)
	var insufficient *bankgen.InsufficientFunds
	if !errors.As(err, &insufficient) {
		log.Fatalf("expected InsufficientFunds, got %v", err)
	}
	fmt.Printf("withdraw 10000 -> Bank::InsufficientFunds{Balance: %d}\n", insufficient.Balance)

	// Readonly attribute.
	bal, err = account.Balance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("balance attribute ->", bal)

	// Crash a replica; the typed stub keeps working.
	members, _ := domain.RM.Members(gid)
	fmt.Println("crashing", members[0], "...")
	domain.CrashNode(members[0])
	if _, err := account.Deposit(1); err != nil {
		log.Fatal(err)
	}
	hist, err := account.History(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history after failover:")
	for _, h := range hist {
		fmt.Println("  ", h)
	}
}
