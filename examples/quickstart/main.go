// Quickstart: a replicated counter that survives the crash of its replicas.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/cdr"
)

const counterType = "IDL:example/Counter:1.0"

// counter is the application object: a plain Go struct implementing
// repro.Servant (dispatch) and repro.Checkpointable (state capture, so the
// infrastructure can synchronize new and recovering replicas).
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) RepoID() string { return counterType }

func (c *counter) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch inv.Operation {
	case "increment":
		c.n++
		return []repro.Value{repro.LongLong(c.n)}, nil
	case "value":
		return []repro.Value{repro.LongLong(c.n)}, nil
	}
	return nil, &repro.UserException{Name: "IDL:example/UnknownOperation:1.0"}
}

func (c *counter) GetState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(c.n)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (c *counter) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
	return nil
}

func main() {
	// 1. Build an FT domain: three server nodes plus a client node, all on
	//    an in-process simulated LAN.
	domain, err := repro.NewDomain(repro.Options{
		Nodes: []string{"server-1", "server-2", "server-3", "client"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Stop()
	if err := domain.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// 2. Tell the Replication Manager how to create counter replicas.
	err = domain.RegisterFactory(counterType,
		func() repro.Servant { return &counter{} },
		"server-1", "server-2", "server-3")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create an actively replicated counter (3 replicas).
	ref, gid, err := domain.Create("counter", counterType, &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("object group reference:", repro.RefToString(ref)[:60]+"...")

	// 4. Invoke it from the client node. The proxy totally orders the
	//    invocation across all replicas and returns the first reply.
	proxy, err := domain.Proxy("client", gid)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, err := proxy.Invoke("increment")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("counter =", out[0].AsLongLong())
	}

	// 5. Crash a replica. The client notices nothing.
	members, _ := domain.RM.Members(gid)
	fmt.Println("crashing", members[0], "...")
	domain.CrashNode(members[0])

	out, err := proxy.Invoke("increment")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counter =", out[0].AsLongLong(), "(fault was transparent)")
}
