// Inventory: the automobile sales scenario from the Eternal papers.
//
// A factory and two showrooms share a replicated inventory object. When
// one showroom's network link fails, *both* sides keep selling cars; when
// the link is restored, the infrastructure transfers the primary
// component's state and re-applies the disconnected showroom's sales as
// fulfillment operations — generating back orders when the same car was
// sold twice.
//
// Run with:
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/cdr"
)

const inventoryType = "IDL:example/Inventory:1.0"

// inventory tracks cars in stock, sold, and on back order.
type inventory struct {
	mu         sync.Mutex
	stock      int64
	sold       int64
	backOrders int64
}

func (s *inventory) RepoID() string { return inventoryType }

func (s *inventory) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "manufacture":
		s.stock += int64(inv.Args[0].AsLong())
		return []repro.Value{repro.LongLong(s.stock)}, nil
	case "sell":
		if s.stock <= 0 {
			return nil, &repro.UserException{Name: "IDL:example/OutOfStock:1.0"}
		}
		s.stock--
		s.sold++
		return []repro.Value{repro.LongLong(s.stock)}, nil
	case "sellOrBackOrder":
		// The fulfillment form of sell: applied to the merged state after
		// a partition heals; a missing car becomes a rush back order.
		s.sold++
		if s.stock > 0 {
			s.stock--
		} else {
			s.backOrders++
		}
		return []repro.Value{repro.LongLong(s.stock)}, nil
	case "report":
		return []repro.Value{
			repro.LongLong(s.stock),
			repro.LongLong(s.sold),
			repro.LongLong(s.backOrders),
		}, nil
	}
	return nil, &repro.UserException{Name: "IDL:example/UnknownOperation:1.0"}
}

// MapFulfillment translates operations performed while disconnected into
// their reconciliation form (the paper's "fulfillment operations are just
// operations").
func (s *inventory) MapFulfillment(op string, args []repro.Value) (string, []repro.Value, bool) {
	switch op {
	case "sell":
		return "sellOrBackOrder", args, true
	case "report":
		return "", nil, false // reads need no fulfillment
	default:
		return op, args, true
	}
}

func (s *inventory) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteLongLong(s.stock)
	e.WriteLongLong(s.sold)
	e.WriteLongLong(s.backOrders)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (s *inventory) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	stock, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	sold, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	back, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stock, s.sold, s.backOrders = stock, sold, back
	s.mu.Unlock()
	return nil
}

func main() {
	domain, err := repro.NewDomain(repro.Options{
		Nodes: []string{"factory", "showroom-east", "showroom-west"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Stop()
	if err := domain.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	if err := domain.RegisterFactory(inventoryType,
		func() repro.Servant { return &inventory{} }); err != nil {
		log.Fatal(err)
	}
	_, gid, err := domain.Create("inventory", inventoryType, &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 3,
		MembershipStyle:       repro.MembershipApplication,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(gid, 3, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	factory, _ := domain.Proxy("factory", gid)
	east, _ := domain.Proxy("showroom-east", gid)
	west, _ := domain.Proxy("showroom-west", gid)

	fmt.Println("factory manufactures 5 cars")
	if _, err := factory.Invoke("manufacture", repro.Long(5)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- network failure: showroom-west loses its link ---")
	domain.Partition(
		[]string{"factory", "showroom-east"},
		[]string{"showroom-west"},
	)
	time.Sleep(300 * time.Millisecond)

	fmt.Println("east sells 4 cars (primary component)")
	for i := 0; i < 4; i++ {
		if _, err := east.Invoke("sell"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("west sells 2 cars while disconnected (secondary component)")
	for i := 0; i < 2; i++ {
		if _, err := west.Invoke("sell"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n--- link restored: state transfer + fulfillment operations ---")
	domain.Heal()
	deadline := time.Now().Add(15 * time.Second)
	for {
		out, err := factory.Invoke("report")
		if err == nil && out[1].AsLongLong() == 6 {
			fmt.Printf("reconciled: stock=%d sold=%d backOrders=%d\n",
				out[0].AsLongLong(), out[1].AsLongLong(), out[2].AsLongLong())
			fmt.Println("west's 2 disconnected sales were honored: 1 from stock, 1 as a rush back order")
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("never reconciled: %v %v", out, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
