// Legacy: the three integration approaches for retrofitting fault
// tolerance onto CORBA applications, side by side — the architectural
// spectrum the lessons-learned literature contrasts.
//
//   - interception: an *unmodified* client ORB talks plain IIOP to what it
//     believes is an ordinary object; the interceptor below it redirects
//     each request through the replicated group (the Eternal approach);
//   - service: the client explicitly invokes a GroupService object through
//     the ORB, which forwards to the group (the OGS approach);
//   - integrated: the client links against the replication engine directly
//     (the FT-CORBA-style integrated ORB).
//
// Run with:
//
//	go run ./examples/legacy
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/cdr"
	"repro/internal/interception"
	"repro/internal/service"
)

const storeType = "IDL:example/KVStore:1.0"

// kvStore is a replicated string store.
type kvStore struct {
	mu   sync.Mutex
	data map[string]string
}

func newKVStore() *kvStore { return &kvStore{data: make(map[string]string)} }

func (s *kvStore) RepoID() string { return storeType }

func (s *kvStore) Dispatch(inv *repro.Invocation) ([]repro.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch inv.Operation {
	case "put":
		s.data[inv.Args[0].AsString()] = inv.Args[1].AsString()
		return nil, nil
	case "get":
		v, ok := s.data[inv.Args[0].AsString()]
		if !ok {
			return nil, &repro.UserException{Name: "IDL:example/NotFound:1.0"}
		}
		return []repro.Value{repro.Str(v)}, nil
	}
	return nil, &repro.UserException{Name: "IDL:example/UnknownOperation:1.0"}
}

func (s *kvStore) GetState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(uint32(len(s.data)))
	for k, v := range s.data {
		e.WriteString(k)
		e.WriteString(v)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func (s *kvStore) SetState(b []byte) error {
	d := cdr.NewDecoder(b, cdr.BigEndian)
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	data := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return err
		}
		v, err := d.ReadString()
		if err != nil {
			return err
		}
		data[k] = v
	}
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
	return nil
}

func main() {
	domain, err := repro.NewDomain(repro.Options{
		Nodes:   []string{"srv-1", "srv-2", "gateway", "legacy-client"},
		ORBPort: 9000, // every node also runs a plain ORB
	})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Stop()
	if err := domain.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	if err := domain.RegisterFactory(storeType,
		func() repro.Servant { return newKVStore() }, "srv-1", "srv-2"); err != nil {
		log.Fatal(err)
	}
	_, gid, err := domain.Create("store", storeType, &repro.Properties{
		ReplicationStyle:      repro.Active,
		InitialNumberReplicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := domain.WaitGroupReady(gid, 2, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	// --- Approach 1: interception --------------------------------------
	// The legacy client is a plain ORB; it receives an ordinary-looking
	// IOR whose profile secretly addresses the interception bridge.
	bridge, err := interception.Attach(domain.Fabric, "legacy-client", 9100,
		domain.Node("legacy-client").Engine)
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()
	legacyRef := bridge.RefFor(storeType, gid)
	legacyProxy := domain.Node("legacy-client").ORB.Proxy(legacyRef)

	if _, err := legacyProxy.Invoke("put", repro.Str("pi"), repro.Str("3.14159")); err != nil {
		log.Fatal(err)
	}
	out, err := legacyProxy.Invoke("get", repro.Str("pi"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("interception: unmodified ORB client read", out[0].AsString(),
		"from the replicated store")

	// --- Approach 2: service --------------------------------------------
	// The gateway publishes a GroupService; the client calls it with an
	// ordinary ORB invocation naming the target group explicitly.
	svcRef := service.Publish(domain.Node("gateway").ORB, domain.Node("gateway").Engine)
	svcClient := service.NewClient(domain.Node("legacy-client").ORB, svcRef)

	if _, err := svcClient.Invoke(gid, "put", repro.Str("e"), repro.Str("2.71828")); err != nil {
		log.Fatal(err)
	}
	out2, err := svcClient.Invoke(gid, "get", repro.Str("e"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("service:      explicit GroupService call read", out2[0].AsString())

	// --- Approach 3: integrated -----------------------------------------
	proxy, err := domain.Proxy("legacy-client", gid)
	if err != nil {
		log.Fatal(err)
	}
	out3, err := proxy.Invoke("get", repro.Str("pi"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrated:   direct engine proxy read", out3[0].AsString())

	// All three approaches hit the same replicas: crash one and repeat.
	members, _ := domain.RM.Members(gid)
	fmt.Printf("\ncrashing %s; every approach keeps working:\n", members[0])
	domain.CrashNode(members[0])

	if out, err = legacyProxy.Invoke("get", repro.Str("e")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  interception ->", out[0].AsString())
	if out, err = svcClient.Invoke(gid, "get", repro.Str("pi")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  service      ->", out[0].AsString())
	if out, err = proxy.Invoke("get", repro.Str("e")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  integrated   ->", out[0].AsString())
}
